// Package recorder is the repository's sim-time flight recorder: a
// bounded, allocation-light capture of structured events stamped with
// *simulated* time — flow starts, stalls, reroutes and retirements from
// flowsim; link failures, repairs and control-plane reaction windows
// from churn; per-switch rule deltas from routing's incremental table;
// conversion phases from control. Where telemetry answers "how much
// happened", the recorder answers "when, and in what order".
//
// Like telemetry, recording is off by default: the global recorder is
// nil until Enable is called, and every Track handle obtained from a
// nil recorder is itself nil. Track.Emit on a nil Track is a single
// predictable branch (BenchmarkEmitDisabled), so instrumented event
// loops cost nothing when recording is off.
//
// Determinism is the design center. Events are grouped into named
// tracks, one per logical deterministic computation (one simulator run,
// one churn compilation, one experiment's conversions); instrumentation
// sites choose track names that are unique per concurrent computation,
// so each track's event sequence is reproducible regardless of
// goroutine interleaving or worker count. Each track is an independent
// ring buffer of the most recent events with an explicit drop counter —
// overflow is counted, never silent — which keeps the *surviving* event
// set deterministic too. Exporters (journal.go, trace.go) emit tracks
// in sorted name order, so two runs with the same seed produce
// byte-identical journals at any -workers value.
package recorder

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kind classifies a recorded event.
type Kind uint8

const (
	// FlowStart marks a connection's admission into a simulation.
	FlowStart Kind = iota + 1
	// FlowStall marks a connection parking with no usable path
	// (graceful degradation); retries do not re-emit.
	FlowStall
	// FlowReroute marks a topology event replacing a connection's path
	// set; A is the new path count (0 = disconnected).
	FlowReroute
	// FlowRetire marks a connection completing; V is its FCT in sim
	// seconds and A its lifetime reroute count.
	FlowRetire
	// FlowDisconnect marks a connection parked permanently: no future
	// event can restore a path for it.
	FlowDisconnect
	// AllocRound marks one max-min allocation round; A is the number of
	// running connections, B the number admitted (running + stalled).
	AllocRound
	// LinkFail masks one physical link; ID is the link, A and B its
	// switch endpoints.
	LinkFail
	// LinkRepair restores one physical link; fields as LinkFail.
	LinkRepair
	// Reaction is the control-plane reaction window of one churn trace
	// event: [T, T+V] spans detection plus rule updates; A and B carry
	// the rules deleted and added.
	Reaction
	// RuleDelta is one switch's share of an incremental repair: ID is
	// the switch, A rules added, B rules deleted, at sim time T.
	RuleDelta
	// ConversionPhase is one phase of a topology conversion (Label
	// names it: ocs, rule_delete, rule_add, ramp) spanning [T, T+V].
	ConversionPhase
)

// kindNames maps kinds to their journal spellings, in Kind order.
var kindNames = [...]string{
	FlowStart:       "flow_start",
	FlowStall:       "flow_stall",
	FlowReroute:     "flow_reroute",
	FlowRetire:      "flow_retire",
	FlowDisconnect:  "flow_disconnect",
	AllocRound:      "alloc_round",
	LinkFail:        "link_fail",
	LinkRepair:      "link_repair",
	Reaction:        "reaction",
	RuleDelta:       "rule_delta",
	ConversionPhase: "conversion_phase",
}

// String returns the kind's journal spelling ("" for an invalid kind).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return ""
}

// KindFromString resolves a journal spelling back to its Kind (0, false
// for an unknown spelling).
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n != "" && n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one recorded occurrence. The payload fields are generic so
// an Event is a fixed-size value — emitting one allocates nothing:
//
//	T      sim time in seconds
//	Kind   what happened
//	ID     the subject: flow index, link ID, or switch ID
//	A, B   integer payloads (counts, endpoints)
//	V      float payload (duration, delay, FCT)
//	Label  constant-string payload (phase name); avoid fmt.Sprintf here
type Event struct {
	T     float64
	Kind  Kind
	ID    int
	A, B  int64
	V     float64
	Label string
}

// Track is one deterministic event stream: a ring buffer of the most
// recent limit events plus a count of everything ever emitted. The nil
// Track is a valid no-op, which is how disabled recording stays off the
// hot path.
type Track struct {
	mu    sync.Mutex
	name  string
	limit int
	buf   []Event // ring; len < limit while filling
	head  int     // next write slot once full
	total uint64  // events ever emitted
}

// Emit appends one event. Once the ring is full the oldest event is
// overwritten and counted as dropped — a flight recorder keeps the most
// recent window, and the drop count makes truncation explicit. The
// wrapper stays small enough to inline, so the disabled (nil-Track)
// path compiles down to a single branch at the call site.
func (t *Track) Emit(ev Event) {
	if t == nil {
		return
	}
	t.emit(ev)
}

func (t *Track) emit(ev Event) {
	t.mu.Lock()
	if len(t.buf) < t.limit {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.head] = ev
		t.head++
		if t.head == t.limit {
			t.head = 0
		}
	}
	t.total++
	t.mu.Unlock()
}

// Name returns the track's name ("" for a nil Track).
func (t *Track) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Len returns the number of retained events (0 for a nil Track).
func (t *Track) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Dropped returns how many events the ring overwrote (0 for nil).
func (t *Track) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - uint64(len(t.buf))
}

// snapshot copies the retained events oldest-first and reports the
// sequence number of the first retained event plus the emitted total.
func (t *Track) snapshot() (events []Event, first, total uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	events = make([]Event, 0, len(t.buf))
	if len(t.buf) == t.limit {
		events = append(events, t.buf[t.head:]...)
		events = append(events, t.buf[:t.head]...)
	} else {
		events = append(events, t.buf...)
	}
	return events, t.total - uint64(len(t.buf)), t.total
}

// DefaultLimit is the per-track ring capacity used when Enable is
// called with a non-positive limit.
const DefaultLimit = 1 << 16

// Recorder owns a run's tracks and annotations. The nil Recorder is
// valid: Track returns a nil (no-op) handle and Annotate is a no-op.
type Recorder struct {
	limit int

	mu     sync.Mutex
	tracks map[string]*Track
	notes  map[string]string
}

// New creates an empty recorder whose tracks retain up to limit events
// each (DefaultLimit when limit <= 0).
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Recorder{
		limit:  limit,
		tracks: make(map[string]*Track),
		notes:  make(map[string]string),
	}
}

// Limit returns the per-track ring capacity (0 for a nil Recorder).
func (r *Recorder) Limit() int {
	if r == nil {
		return 0
	}
	return r.limit
}

// Track returns (creating on first use) the named track. Handles should
// be fetched once per run, not per event — lookup takes the recorder
// lock. Concurrent computations must use distinct names: a track's
// internal order is only deterministic when a single deterministic
// computation drives it.
func (r *Recorder) Track(name string) *Track {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tracks[name]; ok {
		return t
	}
	t := &Track{name: name, limit: r.limit}
	r.tracks[name] = t
	return t
}

// Annotate attaches a provenance key/value to the run (topology
// fingerprints, workload names); exported sorted by key.
func (r *Recorder) Annotate(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notes[key] = value
}

// Annotations returns a copy of the annotations (nil for nil).
func (r *Recorder) Annotations() map[string]string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.notes))
	for k, v := range r.notes {
		out[k] = v
	}
	return out
}

// TrackSnapshot is one track's export-ready copy.
type TrackSnapshot struct {
	Name string
	// First is the sequence number of Events[0]; nonzero exactly when
	// the ring dropped older events.
	First uint64
	// Total counts every event ever emitted; Total - len(Events) were
	// dropped.
	Total  uint64
	Events []Event
}

// Dropped returns how many of the track's events the ring overwrote.
func (s TrackSnapshot) Dropped() uint64 { return s.Total - uint64(len(s.Events)) }

// Snapshot copies every track in sorted name order — the deterministic
// ordering every exporter builds on. A nil recorder yields nil.
func (r *Recorder) Snapshot() []TrackSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.tracks))
	//flatvet:ordered keys are collected then sorted
	for n := range r.tracks {
		names = append(names, n)
	}
	tracks := make([]*Track, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		tracks = append(tracks, r.tracks[n])
	}
	r.mu.Unlock()

	out := make([]TrackSnapshot, len(tracks))
	for i, t := range tracks {
		events, first, total := t.snapshot()
		out[i] = TrackSnapshot{Name: t.name, First: first, Total: total, Events: events}
	}
	return out
}

// Dropped sums the drop counters over all tracks.
func (r *Recorder) Dropped() uint64 {
	var n uint64
	for _, s := range r.Snapshot() {
		n += s.Dropped()
	}
	return n
}

// global is the process-wide recorder; nil means recording is disabled
// and every Track handle from the package-level accessors is a no-op.
var global atomic.Pointer[Recorder]

// Enable installs a fresh global recorder with the given per-track
// limit (DefaultLimit when <= 0) and returns it. Bounded scopes (tests)
// should defer Disable.
func Enable(limit int) *Recorder {
	r := New(limit)
	global.Store(r)
	return r
}

// Disable removes the global recorder; instrumented code reverts to the
// nil-handle fast path.
func Disable() { global.Store(nil) }

// Default returns the global recorder, or nil when recording is
// disabled.
func Default() *Recorder { return global.Load() }

// T returns the named track from the global recorder (nil when
// disabled).
func T(name string) *Track { return Default().Track(name) }
