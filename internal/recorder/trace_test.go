package recorder

import (
	"bytes"
	"encoding/json"
	"testing"

	"flattree/internal/telemetry"
)

// decodeTrace parses the exporter's output into the generic structures a
// trace viewer reads.
func decodeTrace(t *testing.T, data []byte) (map[string]interface{}, []map[string]interface{}) {
	t.Helper()
	var top map[string]interface{}
	if err := json.Unmarshal(data, &top); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	raw, ok := top["traceEvents"].([]interface{})
	if !ok {
		t.Fatalf("traceEvents missing or not an array: %T", top["traceEvents"])
	}
	events := make([]map[string]interface{}, len(raw))
	for i, e := range raw {
		events[i], ok = e.(map[string]interface{})
		if !ok {
			t.Fatalf("traceEvents[%d] is %T", i, e)
		}
	}
	return top, events
}

func TestWriteTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, populated(), nil); err != nil {
		t.Fatal(err)
	}
	top, events := decodeTrace(t, buf.Bytes())
	if top["displayTimeUnit"] != "ms" {
		t.Fatalf("displayTimeUnit = %v", top["displayTimeUnit"])
	}
	od := top["otherData"].(map[string]interface{})
	if od["note:workload"] != "permutation" {
		t.Fatalf("annotation not exported: %v", od)
	}

	var threadNames []string
	phases := map[string]int{}
	sawDropped := false
	for _, e := range events {
		ph := e["ph"].(string)
		phases[ph]++
		if ph == "M" && e["name"] == "thread_name" {
			threadNames = append(threadNames, e["args"].(map[string]interface{})["name"].(string))
		}
		if e["name"] == "dropped" {
			sawDropped = true
			d := e["args"].(map[string]interface{})["events_dropped"].(float64)
			if d != 3 {
				t.Fatalf("events_dropped = %v, want 3", d)
			}
		}
	}
	// One thread per track, in sorted track order.
	want := []string{"churn/clos/engine", "churn/clos/sim", "fig10/conversions"}
	if len(threadNames) != len(want) {
		t.Fatalf("thread names = %v", threadNames)
	}
	for i, n := range want {
		if threadNames[i] != n {
			t.Fatalf("thread %d = %q, want %q", i, threadNames[i], n)
		}
	}
	if !sawDropped {
		t.Fatal("overflowing track exported no dropped marker")
	}
	// The populated recorder has instants (rule deltas, flow start) and
	// slices (flow retire, conversion phase).
	if phases["i"] == 0 || phases["X"] == 0 || phases["M"] == 0 {
		t.Fatalf("phase census = %v", phases)
	}
}

func TestWriteTraceWindows(t *testing.T) {
	r := New(8)
	tr := r.Track("t")
	tr.Emit(Event{T: 2, Kind: Reaction, V: 0.5, A: 10, B: 12})
	tr.Emit(Event{T: 7, Kind: FlowRetire, ID: 3, V: 4, A: 1})
	var buf bytes.Buffer
	if err := WriteTrace(&buf, r, nil); err != nil {
		t.Fatal(err)
	}
	_, events := decodeTrace(t, buf.Bytes())
	var reaction, flow map[string]interface{}
	for _, e := range events {
		switch e["name"] {
		case "reaction":
			reaction = e
		case "flow 3":
			flow = e
		}
	}
	if reaction == nil || reaction["ph"] != "X" || reaction["ts"].(float64) != 2e6 || reaction["dur"].(float64) != 0.5e6 {
		t.Fatalf("reaction slice = %v", reaction)
	}
	// A retire at t=7 with FCT 4 renders the flow's lifetime [3s, 7s].
	if flow == nil || flow["ph"] != "X" || flow["ts"].(float64) != 3e6 || flow["dur"].(float64) != 4e6 {
		t.Fatalf("flow slice = %v", flow)
	}
}

func TestWriteTraceTelemetrySpans(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	sp := telemetry.StartSpan("experiment:test")
	sp.Record("ocs", 0.17) // modeled: never elapsed on the wall clock
	sp.End()
	snap := reg.Snapshot()

	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil, snap); err != nil {
		t.Fatal(err)
	}
	_, events := decodeTrace(t, buf.Bytes())
	var measured, modeled map[string]interface{}
	for _, e := range events {
		switch e["name"] {
		case "experiment:test":
			measured = e
		case "ocs":
			modeled = e
		}
	}
	if measured == nil || measured["tid"].(float64) != 1 {
		t.Fatalf("measured span = %v", measured)
	}
	// Modeled spans live on their own thread so a modeled duration
	// longer than its measured parent cannot break slice nesting.
	if modeled == nil || modeled["tid"].(float64) != 2 {
		t.Fatalf("modeled span = %v", modeled)
	}
	if modeled["args"].(map[string]interface{})["modeled"] != true {
		t.Fatalf("modeled span args = %v", modeled["args"])
	}
	if modeled["dur"].(float64) != 0.17e6 {
		t.Fatalf("modeled dur = %v", modeled["dur"])
	}
}
