package recorder

import (
	"bytes"
	"strings"
	"testing"
)

// populated builds a recorder with annotations, multiple tracks, a
// dropped-events track, and every payload field exercised.
func populated() *Recorder {
	r := New(4)
	r.Annotate("topology_fingerprint/clos", "abc123")
	r.Annotate("workload", "permutation")
	sim := r.Track("churn/clos/sim")
	sim.Emit(Event{T: 0, Kind: FlowStart, ID: 0, A: 8})
	sim.Emit(Event{T: 0.5, Kind: FlowReroute, ID: 0, A: 6})
	sim.Emit(Event{T: 1.25, Kind: FlowRetire, ID: 0, V: 1.25, A: 1})
	eng := r.Track("churn/clos/engine")
	for i := 0; i < 7; i++ { // overflows the 4-slot ring
		eng.Emit(Event{T: float64(i), Kind: RuleDelta, ID: i, A: 2, B: 3})
	}
	conv := r.Track("fig10/conversions")
	conv.Emit(Event{T: 60, Kind: ConversionPhase, V: 0.17, Label: "ocs"})
	return r
}

func TestWriteJournalDeterministic(t *testing.T) {
	r := populated()
	var a, b bytes.Buffer
	if err := WriteJournal(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := WriteJournal(&b, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same recorder differ")
	}
}

func TestJournalShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJournal(&buf, populated()); err != nil {
		t.Fatal(err)
	}
	j, err := DecodeJournal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if j.Version != JournalVersion || j.Limit != 4 {
		t.Fatalf("header version/limit = %d/%d", j.Version, j.Limit)
	}
	// Annotations sorted by key, before any track line.
	if j.Lines[1].Note != "topology_fingerprint/clos" || j.Lines[2].Note != "workload" {
		t.Fatalf("annotation order: %+v %+v", j.Lines[1], j.Lines[2])
	}
	// Tracks in sorted name order; engine ring dropped 3 of 7.
	if j.Lines[3].Track != "churn/clos/engine" || *j.Lines[3].Total != 7 || *j.Lines[3].Dropped != 3 {
		t.Fatalf("first track meta: %+v", j.Lines[3])
	}
	// First retained engine event carries seq 3 (events 0..2 dropped).
	if *j.Lines[4].Seq != 3 || j.Lines[4].Kind != "rule_delta" || j.Lines[4].ID != 3 {
		t.Fatalf("first engine event: %+v", j.Lines[4])
	}
	if got := len(j.Events()); got != 8 {
		t.Fatalf("event lines = %d, want 8 (4 engine + 3 sim + 1 conversion)", got)
	}
}

func TestJournalRoundTripFixpoint(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJournal(&buf, populated()); err != nil {
		t.Fatal(err)
	}
	j, err := DecodeJournal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := j.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, buf.Bytes()) {
		t.Fatalf("decode→encode is not the identity:\n in: %q\nout: %q", buf.Bytes(), enc)
	}
}

func TestWriteJournalNilRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJournal(&buf, nil); err != nil {
		t.Fatal(err)
	}
	j, err := DecodeJournal(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Lines) != 1 || j.Limit != 0 {
		t.Fatalf("nil recorder journal: %+v", j)
	}
}

func TestDecodeJournalRejects(t *testing.T) {
	for name, in := range map[string]string{
		"empty":      "",
		"blank":      "\n\n",
		"not-json":   "hello\n",
		"bad-header": `{"note":"x","value":"y"}` + "\n",
	} {
		if _, err := DecodeJournal([]byte(in)); err == nil {
			t.Errorf("%s: DecodeJournal accepted %q", name, in)
		}
	}
}

func TestDecodeJournalSkipsBlankLines(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJournal(&buf, populated()); err != nil {
		t.Fatal(err)
	}
	padded := strings.ReplaceAll(buf.String(), "\n", "\n\n")
	j, err := DecodeJournal([]byte(padded))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := j.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, buf.Bytes()) {
		t.Fatal("blank-line padding changed the decoded journal")
	}
}
