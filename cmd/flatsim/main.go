// Command flatsim runs any experiment of the flat-tree reproduction by ID
// (DESIGN.md's per-experiment index) and prints the paper-style table.
//
// Usage:
//
//	flatsim -exp table1                # reduced scale (default)
//	flatsim -exp fig8 -full            # paper scale (slow)
//	flatsim -exp churn                 # failure-over-time FCT study
//	flatsim -exp all                   # every experiment in sequence
//	flatsim -list                      # show experiment IDs
//	flatsim -exp table3 -telemetry -   # JSON telemetry snapshot to stdout
//	flatsim -exp fig8 -prom metrics.prom -pprof localhost:6060
//	flatsim -exp churn -record run     # run.trace.json + run.jsonl + run.runinfo.json
//
// Every run writes a provenance manifest (seed, workers, toolchain, git
// revision, flag set, telemetry counter digest) — runinfo.json by
// default, -runinfo to move or disable it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"flattree/internal/experiments"
	"flattree/internal/parallel"
	"flattree/internal/recorder"
	"flattree/internal/service"
	"flattree/internal/telemetry"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment ID to run (or 'all', or a comma-separated list)")
		full      = flag.Bool("full", false, "run at paper scale (topo-1..6, k=16 fat-tree); slow")
		seed      = flag.Int64("seed", 1, "seed for all stochastic components")
		epsilon   = flag.Float64("epsilon", 0.25, "LP approximation accuracy (smaller = tighter, slower)")
		list      = flag.Bool("list", false, "list experiment IDs and exit")
		csvDir    = flag.String("csv", "", "also write figure series as CSV files into this directory (fig8, fig10)")
		telemOut  = flag.String("telemetry", "", "write a JSON telemetry snapshot (metrics, traces) to this file, or '-' for stdout")
		promOut   = flag.String("prom", "", "write Prometheus text-exposition metrics to this file, or '-' for stdout")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
		workers   = flag.Int("workers", 0, "worker-pool size for parallel sections (0 = GOMAXPROCS); results are identical for any value")
		fbmix     = flag.Int("fbmix-flows", 0, "fbmix_large: flows per workload (0 = scale default; 2500000 runs 10M flows total)")
		record    = flag.String("record", "", "flight-recorder output base: writes <base>.trace.json (Perfetto), <base>.jsonl (journal), <base>.runinfo.json")
		recLimit  = flag.Int("record-limit", recorder.DefaultLimit, "flight-recorder ring capacity: events kept per track before the oldest are dropped")
		runinfo   = flag.String("runinfo", "runinfo.json", "write the provenance manifest to this file, or '-' for stdout; empty disables (with -record the manifest goes to <base>.runinfo.json instead)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "flatsim: -exp required (use -list to see experiments)")
		os.Exit(2)
	}
	names, err := resolveExperiments(*exp, experiments.Names())
	if err != nil {
		fmt.Fprintf(os.Stderr, "flatsim: %v\n", err)
		os.Exit(2)
	}

	// Telemetry is always on: the provenance manifest digests the
	// counters, and the per-experiment stderr summary reads the flowsim
	// stall/reroute/disconnect totals. The snapshot/Prometheus files are
	// still opt-in.
	reg := telemetry.Enable()
	var rec *recorder.Recorder
	if *record != "" {
		rec = recorder.Enable(*recLimit)
	}
	// Pre-bind the pprof listener so the banner never announces an address
	// that failed to bind; a bad -pprof flag is a startup error, not a
	// background log line racing the experiment output.
	if *pprofAddr != "" {
		pa, err := service.StartPprof(*pprofAddr, func(err error) {
			fmt.Fprintf(os.Stderr, "flatsim: pprof server: %v\n", err)
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "flatsim: pprof listen on %s: %v\n", *pprofAddr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "flatsim: pprof at http://%s/debug/pprof/\n", pa)
	}

	// Experiment tables go to stdout; timing and errors go to stderr, so
	// stdout is byte-identical run to run (and across -workers values) at
	// a fixed seed.
	cfg := experiments.Config{Full: *full, Seed: *seed, Epsilon: *epsilon, FBMixFlows: *fbmix}
	if *csvDir == "" && len(names) > 1 {
		failed := false
		for _, oc := range experiments.RunAll(names, cfg) {
			if oc.Err != nil {
				fmt.Fprintf(os.Stderr, "flatsim: %s: %v\n", oc.Name, oc.Err)
				failed = true
				continue
			}
			fmt.Println(oc.Result.String())
			fmt.Fprintf(os.Stderr, "(%s in %v)\n", oc.Name, oc.Elapsed.Round(time.Millisecond))
		}
		// Experiments ran concurrently, so the global flow counters can
		// only be reported as batch totals here.
		if fs := flowCounters(reg); fs.any() {
			fmt.Fprintf(os.Stderr, "flows over all experiments: %s\n", fs)
		}
		if failed {
			os.Exit(1)
		}
	} else {
		prev := flowCounters(reg)
		for _, name := range names {
			start := time.Now()
			var res experiments.Result
			var err error
			if *csvDir != "" {
				res, err = experiments.RunWithCSV(name, cfg, *csvDir)
			} else {
				res, err = experiments.Run(name, cfg)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "flatsim: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println(res.String())
			cur := flowCounters(reg)
			if d := cur.sub(prev); d.any() {
				fmt.Fprintf(os.Stderr, "(%s in %v; flows: %s)\n", name, time.Since(start).Round(time.Millisecond), d)
			} else {
				fmt.Fprintf(os.Stderr, "(%s in %v)\n", name, time.Since(start).Round(time.Millisecond))
			}
			prev = cur
		}
	}

	if err := writeTelemetry(reg, *telemOut, *promOut); err != nil {
		fmt.Fprintf(os.Stderr, "flatsim: %v\n", err)
		os.Exit(1)
	}
	if err := writeRecord("flatsim", rec, reg, *record, *runinfo, *seed, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "flatsim: %v\n", err)
		os.Exit(1)
	}
}

// flowStats are the simulator's per-flow incident counters at one
// instant; per-experiment deltas make up the stderr summary.
type flowStats struct {
	stalls, reroutes, disconnects int64
}

func flowCounters(reg *telemetry.Registry) flowStats {
	snap := reg.Snapshot()
	return flowStats{
		stalls:      snap.Counters["flowsim_stalls_total"],
		reroutes:    snap.Counters["flowsim_reroutes_total"],
		disconnects: snap.Counters["flowsim_disconnected_total"],
	}
}

func (f flowStats) sub(prev flowStats) flowStats {
	return flowStats{f.stalls - prev.stalls, f.reroutes - prev.reroutes, f.disconnects - prev.disconnects}
}

func (f flowStats) any() bool { return f.stalls != 0 || f.reroutes != 0 || f.disconnects != 0 }

func (f flowStats) String() string {
	return fmt.Sprintf("%d stalled, %d rerouted, %d disconnected", f.stalls, f.reroutes, f.disconnects)
}

// writeRecord exports the run's flight-recorder artifacts and provenance
// manifest. With base set, the trace, journal, and manifest land at
// <base>.trace.json / <base>.jsonl / <base>.runinfo.json; otherwise only
// the manifest is written, to runinfoDst (empty disables).
func writeRecord(tool string, rec *recorder.Recorder, reg *telemetry.Registry, base, runinfoDst string, seed int64, workers int) error {
	snap := reg.Snapshot()
	if base != "" {
		if err := writeTo(base+".trace.json", func(w io.Writer) error { return recorder.WriteTrace(w, rec, snap) }); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
		if err := writeTo(base+".jsonl", func(w io.Writer) error { return recorder.WriteJournal(w, rec) }); err != nil {
			return fmt.Errorf("journal export: %w", err)
		}
		runinfoDst = base + ".runinfo.json"
	}
	if runinfoDst == "" {
		return nil
	}
	ri := recorder.CollectRunInfo(tool, seed, workers, recorder.FlagMap(flag.CommandLine), rec, snap)
	if err := writeTo(runinfoDst, ri.WriteJSON); err != nil {
		return fmt.Errorf("runinfo manifest: %w", err)
	}
	return nil
}

// resolveExperiments expands and validates the -exp argument against the
// registered IDs: "all" selects every experiment, a comma-separated list
// selects several, and any unknown ID is an error naming the valid ones.
func resolveExperiments(arg string, valid []string) ([]string, error) {
	known := make(map[string]bool, len(valid))
	for _, v := range valid {
		known[v] = true
	}
	sorted := append([]string(nil), valid...)
	sort.Strings(sorted)

	var names []string
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		switch {
		case name == "":
			continue
		case name == "all":
			names = append(names, sorted...)
		case known[name]:
			names = append(names, name)
		default:
			return nil, fmt.Errorf("unknown experiment %q; valid IDs:\n  %s",
				name, strings.Join(sorted, "\n  "))
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no experiment selected; valid IDs:\n  %s", strings.Join(sorted, "\n  "))
	}
	return names, nil
}

// writeTelemetry dumps the run's telemetry in the requested formats;
// "-" targets stdout.
func writeTelemetry(reg *telemetry.Registry, jsonOut, promOut string) error {
	if reg == nil {
		return nil
	}
	if jsonOut != "" {
		if err := writeTo(jsonOut, reg.WriteJSON); err != nil {
			return fmt.Errorf("telemetry snapshot: %w", err)
		}
	}
	if promOut != "" {
		if err := writeTo(promOut, reg.WritePrometheus); err != nil {
			return fmt.Errorf("prometheus export: %w", err)
		}
	}
	return nil
}

func writeTo(dst string, write func(w io.Writer) error) error {
	if dst == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
