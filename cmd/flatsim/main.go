// Command flatsim runs any experiment of the flat-tree reproduction by ID
// (DESIGN.md's per-experiment index) and prints the paper-style table.
//
// Usage:
//
//	flatsim -exp table1                # reduced scale (default)
//	flatsim -exp fig8 -full            # paper scale (slow)
//	flatsim -exp all                   # every experiment in sequence
//	flatsim -list                      # show experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flattree/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment ID to run (or 'all')")
		full    = flag.Bool("full", false, "run at paper scale (topo-1..6, k=16 fat-tree); slow")
		seed    = flag.Int64("seed", 1, "seed for all stochastic components")
		epsilon = flag.Float64("epsilon", 0.25, "LP approximation accuracy (smaller = tighter, slower)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		csvDir  = flag.String("csv", "", "also write figure series as CSV files into this directory (fig8, fig10)")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "flatsim: -exp required (use -list to see experiments)")
		os.Exit(2)
	}
	cfg := experiments.Config{Full: *full, Seed: *seed, Epsilon: *epsilon}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		var res experiments.Result
		var err error
		if *csvDir != "" {
			res, err = experiments.RunWithCSV(name, cfg, *csvDir)
		} else {
			res, err = experiments.Run(name, cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "flatsim: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}
