package main

import (
	"reflect"
	"strings"
	"testing"

	"flattree/internal/experiments"
)

func TestResolveExperiments(t *testing.T) {
	valid := []string{"table1", "table3", "fig8"}
	for _, tc := range []struct {
		arg  string
		want []string
	}{
		{"table1", []string{"table1"}},
		{"table3,fig8", []string{"table3", "fig8"}},
		{" table1 , fig8 ", []string{"table1", "fig8"}},
		{"all", []string{"fig8", "table1", "table3"}},
	} {
		got, err := resolveExperiments(tc.arg, valid)
		if err != nil {
			t.Fatalf("resolveExperiments(%q): %v", tc.arg, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("resolveExperiments(%q) = %v, want %v", tc.arg, got, tc.want)
		}
	}
}

func TestResolveExperimentsUnknownListsValidIDs(t *testing.T) {
	valid := []string{"table1", "table3", "fig8"}
	_, err := resolveExperiments("tabel3", valid)
	if err == nil {
		t.Fatal("unknown experiment did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"tabel3"`) {
		t.Fatalf("error does not name the bad ID: %q", msg)
	}
	for _, v := range valid {
		if !strings.Contains(msg, v) {
			t.Fatalf("error does not list valid ID %q: %q", v, msg)
		}
	}
}

func TestResolveExperimentsEmpty(t *testing.T) {
	for _, arg := range []string{"", " , ,"} {
		if _, err := resolveExperiments(arg, []string{"table1"}); err == nil {
			t.Fatalf("resolveExperiments(%q) did not error", arg)
		}
	}
}

// TestResolveAgainstRegistry pins the helper to the live registry: every
// registered ID resolves, and "all" covers the whole registry.
func TestResolveAgainstRegistry(t *testing.T) {
	names := experiments.Names()
	if len(names) == 0 {
		t.Fatal("no registered experiments")
	}
	all, err := resolveExperiments("all", names)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(names) {
		t.Fatalf("all resolved to %d of %d experiments", len(all), len(names))
	}
	for _, n := range names {
		if _, err := resolveExperiments(n, names); err != nil {
			t.Fatalf("registered ID %q did not resolve: %v", n, err)
		}
	}
}
