package main

import (
	"strings"
	"testing"
)

// FuzzResolveExperiments drives the -exp argument parser with arbitrary
// strings: it must never panic, never return an empty selection without
// an error, and every returned name must be a registered ID.
func FuzzResolveExperiments(f *testing.F) {
	valid := []string{"table1", "table2", "fig6", "fig8", "ablation-k"}
	f.Add("table1")
	f.Add("all")
	f.Add("table1,fig8")
	f.Add(" fig6 , ,table2")
	f.Add("all,all")
	f.Add("nope")
	f.Add(",,,")
	f.Add("")
	f.Add("table1,\ttable2\n")
	f.Fuzz(func(t *testing.T, arg string) {
		names, err := resolveExperiments(arg, valid)
		if err != nil {
			if names != nil {
				t.Fatalf("resolveExperiments(%q) returned names %v alongside error %v", arg, names, err)
			}
			return
		}
		if len(names) == 0 {
			t.Fatalf("resolveExperiments(%q) returned no names and no error", arg)
		}
		known := make(map[string]bool, len(valid))
		for _, v := range valid {
			known[v] = true
		}
		for _, n := range names {
			if !known[n] {
				t.Fatalf("resolveExperiments(%q) returned unknown name %q", arg, n)
			}
		}
		// Every requested token must be accounted for: a token that is
		// neither empty, "all", nor a known ID must have errored above.
		for _, tok := range strings.Split(arg, ",") {
			tok = strings.TrimSpace(tok)
			if tok != "" && tok != "all" && !known[tok] {
				t.Fatalf("resolveExperiments(%q) accepted unknown token %q", arg, tok)
			}
		}
	})
}
