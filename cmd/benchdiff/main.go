// Command benchdiff maintains the repository's performance trajectory:
// it parses `go test -bench` output into a structured trajectory point
// (BENCH_<label>.json, committed into the tree), and gates CI by
// comparing a fresh point against the committed ones.
//
// Usage:
//
//	go test -bench=. ./... | benchdiff -parse - -label pr6 -out BENCH_pr6.json
//	benchdiff -check BENCH_ci.json -against 'BENCH_pr*.json' -tolerance 10
//
// The check compares each benchmark's ns/op against the best (lowest)
// value any baseline point recorded for the same package and benchmark
// name, and exits non-zero when the current value exceeds baseline ×
// tolerance. Benchmarks with fewer than -min-iters iterations in the
// current point are skipped rather than gated — a one-iteration sample
// (CI's -benchtime=1x smoke) measures warmup, not steady state.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Point is one PR's (or one CI run's) position on the perf trajectory.
type Point struct {
	Label  string `json:"label"`
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Benchmarks is sorted by package, name, procs — the files diff
	// cleanly between regenerations.
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark result: every metric go test printed for it,
// keyed by unit (ns/op, B/op, allocs/op, custom ReportMetric units).
type Bench struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchLine matches "BenchmarkFoo-8   123   4.56 ns/op   0 B/op ...".
// The GOMAXPROCS suffix is optional (GOMAXPROCS=1 omits it).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)((?:\s+[0-9][0-9.e+-]*\s+\S+)+)\s*$`)

// parseBench reads `go test -bench` text output. Package attribution
// comes from the "pkg:" header go test prints before each package's
// benchmarks; goos/goarch/cpu headers describe the machine.
func parseBench(r io.Reader, label string) (*Point, error) {
	pt := &Point{Label: label}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "):
			pt.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			pt.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			pt.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Bench{Pkg: pkg, Name: m[1], Metrics: map[string]float64{}}
		if m[2] != "" {
			n, err := strconv.Atoi(m[2])
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchdiff: bad GOMAXPROCS suffix in %q: %v (assuming 1)\n", line, err)
				n = 1
			}
			b.Procs = n
		}
		var err error
		if b.Iterations, err = strconv.ParseInt(m[3], 10, 64); err != nil {
			return nil, fmt.Errorf("benchdiff: bad iteration count in %q: %w", line, err)
		}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad metric value in %q: %w", line, err)
			}
			b.Metrics[fields[i+1]] = v
		}
		pt.Benchmarks = append(pt.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(pt.Benchmarks, func(i, j int) bool {
		a, b := pt.Benchmarks[i], pt.Benchmarks[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Procs < b.Procs
	})
	return pt, nil
}

// Regression is one benchmark that got slower than tolerance allows.
type Regression struct {
	Pkg, Name string
	// Cur and Base are ns/op; BaseLabel names the point that set the
	// baseline.
	Cur, Base float64
	BaseLabel string
}

func (r Regression) String() string {
	return fmt.Sprintf("%s.%s: %.4g ns/op vs %.4g ns/op in %s (%.1fx)",
		r.Pkg, r.Name, r.Cur, r.Base, r.BaseLabel, r.Cur/r.Base)
}

// compare gates the current point: for each benchmark with at least
// minIters iterations whose (pkg, name) appears in a prior point, the
// current ns/op must stay within tolerance × the best prior ns/op. The
// GOMAXPROCS suffix is deliberately ignored — runner core counts differ.
func compare(cur *Point, priors []*Point, tolerance float64, minIters int64) (regs []Regression, gated, skipped, unmatched int) {
	type baseline struct {
		ns    float64
		label string
	}
	best := map[string]baseline{}
	for _, p := range priors {
		for _, b := range p.Benchmarks {
			ns, ok := b.Metrics["ns/op"]
			if !ok || ns <= 0 {
				continue
			}
			key := b.Pkg + "." + b.Name
			if cur, ok := best[key]; !ok || ns < cur.ns {
				best[key] = baseline{ns, p.Label}
			}
		}
	}
	for _, b := range cur.Benchmarks {
		ns, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		base, ok := best[b.Pkg+"."+b.Name]
		if !ok {
			unmatched++
			continue
		}
		if b.Iterations < minIters {
			skipped++
			continue
		}
		gated++
		if ns > base.ns*tolerance {
			regs = append(regs, Regression{Pkg: b.Pkg, Name: b.Name, Cur: ns, Base: base.ns, BaseLabel: base.label})
		}
	}
	return regs, gated, skipped, unmatched
}

// loadPoints reads every trajectory point the glob matches, skipping the
// file at exclude (the point under check) and files that are not
// structured points (pre-benchdiff artifacts) with a warning.
func loadPoints(glob, exclude string) ([]*Point, error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: bad -against pattern %q: %w", glob, err)
	}
	sort.Strings(paths)
	var pts []*Point
	for _, p := range paths {
		if sameFile(p, exclude) {
			continue
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var pt Point
		if err := json.Unmarshal(data, &pt); err != nil || len(pt.Benchmarks) == 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: skipping %s: not a structured trajectory point\n", p)
			continue
		}
		pts = append(pts, &pt)
	}
	return pts, nil
}

func sameFile(a, b string) bool {
	if b == "" {
		return false
	}
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

func writePoint(pt *Point, dst string) error {
	var w io.Writer = os.Stdout
	if dst != "-" {
		f, err := os.Create(dst)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pt)
}

func main() {
	var (
		parse     = flag.String("parse", "", "parse `go test -bench` output from this file ('-' for stdin) into a trajectory point")
		label     = flag.String("label", "local", "label stored in the parsed point (pr6, ci, ...)")
		out       = flag.String("out", "-", "write the parsed point to this file ('-' for stdout)")
		check     = flag.String("check", "", "gate this trajectory point against the committed baselines")
		against   = flag.String("against", "BENCH_*.json", "glob of baseline points for -check (the checked file itself is excluded)")
		tolerance = flag.Float64("tolerance", 4, "fail when a benchmark's ns/op exceeds its best baseline by this factor")
		minIters  = flag.Int64("min-iters", 10, "gate only benchmarks with at least this many iterations in the checked point")
	)
	flag.Parse()
	if (*parse == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -parse or -check is required")
		os.Exit(2)
	}

	if *parse != "" {
		r := io.Reader(os.Stdin)
		if *parse != "-" {
			f, err := os.Open(*parse)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			r = f
		}
		pt, err := parseBench(r, *label)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		if len(pt.Benchmarks) == 0 {
			fmt.Fprintln(os.Stderr, "benchdiff: no benchmark lines in input")
			os.Exit(1)
		}
		if err := writePoint(pt, *out); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		return
	}

	data, err := os.ReadFile(*check)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	var cur Point
	if err := json.Unmarshal(data, &cur); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *check, err)
		os.Exit(1)
	}
	priors, err := loadPoints(*against, *check)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if len(priors) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: no baseline points match %q; nothing to gate\n", *against)
		return
	}
	regs, gated, skipped, unmatched := compare(&cur, priors, *tolerance, *minIters)
	fmt.Printf("benchdiff: %d benchmarks gated against %d baseline points (%d below -min-iters, %d without baseline)\n",
		gated, len(priors), skipped, unmatched)
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Printf("REGRESSION %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions beyond %.1fx tolerance\n", *tolerance)
}
