package main

import (
	"strings"
	"testing"
)

// golden is a realistic `go test -bench` transcript covering two
// packages, GOMAXPROCS suffixes, sub-nanosecond values, allocation
// metrics, and noise lines that must be ignored.
const golden = `goos: linux
goarch: amd64
pkg: flattree/internal/recorder
cpu: Intel(R) Xeon(R) CPU
BenchmarkEmitDisabled-8   	1000000000	         0.5123 ns/op	       0 B/op	       0 allocs/op
BenchmarkEmitEnabled-8    	31415926	        38.27 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	flattree/internal/recorder	2.345s
pkg: flattree/internal/routing
BenchmarkRepair 	     100	    123456 ns/op
--- BENCH: BenchmarkRepair
    some_test.go:1: note
PASS
ok  	flattree/internal/routing	0.5s
`

func parseGolden(t *testing.T, label string) *Point {
	t.Helper()
	pt, err := parseBench(strings.NewReader(golden), label)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestParseBench(t *testing.T) {
	pt := parseGolden(t, "pr6")
	if pt.Label != "pr6" || pt.GoOS != "linux" || pt.GoArch != "amd64" {
		t.Fatalf("headers not captured: %+v", pt)
	}
	if len(pt.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(pt.Benchmarks))
	}
	// Sorted by pkg then name.
	b := pt.Benchmarks[0]
	if b.Pkg != "flattree/internal/recorder" || b.Name != "BenchmarkEmitDisabled" {
		t.Fatalf("first benchmark = %s.%s", b.Pkg, b.Name)
	}
	if b.Procs != 8 || b.Iterations != 1000000000 {
		t.Fatalf("procs/iterations = %d/%d", b.Procs, b.Iterations)
	}
	if got := b.Metrics["ns/op"]; got != 0.5123 {
		t.Fatalf("ns/op = %v", got)
	}
	if got := b.Metrics["allocs/op"]; got != 0 {
		t.Fatalf("allocs/op = %v", got)
	}
	// No-procs-suffix line (GOMAXPROCS=1 style).
	r := pt.Benchmarks[2]
	if r.Pkg != "flattree/internal/routing" || r.Name != "BenchmarkRepair" || r.Procs != 0 {
		t.Fatalf("routing benchmark = %+v", r)
	}
	if r.Metrics["ns/op"] != 123456 {
		t.Fatalf("routing ns/op = %v", r.Metrics["ns/op"])
	}
}

func TestCompareNoRegression(t *testing.T) {
	base := parseGolden(t, "pr6")
	cur := parseGolden(t, "ci")
	regs, gated, skipped, unmatched := compare(cur, []*Point{base}, 4, 10)
	if len(regs) != 0 {
		t.Fatalf("identical points regressed: %v", regs)
	}
	if gated != 3 || skipped != 0 || unmatched != 0 {
		t.Fatalf("gated/skipped/unmatched = %d/%d/%d", gated, skipped, unmatched)
	}
}

func TestCompareSyntheticRegression(t *testing.T) {
	base := parseGolden(t, "pr6")
	cur := parseGolden(t, "ci")
	// 5x slowdown on one benchmark exceeds the 4x tolerance.
	for i := range cur.Benchmarks {
		if cur.Benchmarks[i].Name == "BenchmarkEmitEnabled" {
			cur.Benchmarks[i].Metrics["ns/op"] *= 5
		}
	}
	regs, _, _, _ := compare(cur, []*Point{base}, 4, 10)
	if len(regs) != 1 {
		t.Fatalf("want 1 regression, got %v", regs)
	}
	if regs[0].Name != "BenchmarkEmitEnabled" || regs[0].BaseLabel != "pr6" {
		t.Fatalf("regression misattributed: %+v", regs[0])
	}
}

func TestCompareWithinTolerance(t *testing.T) {
	base := parseGolden(t, "pr6")
	cur := parseGolden(t, "ci")
	for i := range cur.Benchmarks {
		cur.Benchmarks[i].Metrics["ns/op"] *= 3 // under the 4x gate
	}
	if regs, _, _, _ := compare(cur, []*Point{base}, 4, 10); len(regs) != 0 {
		t.Fatalf("3x inside 4x tolerance flagged: %v", regs)
	}
}

func TestCompareSkipsLowIterationSamples(t *testing.T) {
	base := parseGolden(t, "pr6")
	cur := parseGolden(t, "ci")
	for i := range cur.Benchmarks {
		cur.Benchmarks[i].Iterations = 1 // -benchtime=1x smoke
		cur.Benchmarks[i].Metrics["ns/op"] *= 100
	}
	regs, gated, skipped, _ := compare(cur, []*Point{base}, 4, 10)
	if len(regs) != 0 || gated != 0 || skipped != 3 {
		t.Fatalf("low-iteration samples gated: regs=%v gated=%d skipped=%d", regs, gated, skipped)
	}
}

func TestCompareBestBaselineWins(t *testing.T) {
	slow := parseGolden(t, "pr5")
	for i := range slow.Benchmarks {
		slow.Benchmarks[i].Metrics["ns/op"] *= 10
	}
	fast := parseGolden(t, "pr6")
	cur := parseGolden(t, "ci")
	for i := range cur.Benchmarks {
		cur.Benchmarks[i].Metrics["ns/op"] *= 5
	}
	// Against the slow point alone 5x would pass; the best baseline
	// (pr6) must drive the gate.
	regs, _, _, _ := compare(cur, []*Point{slow, fast}, 4, 10)
	if len(regs) != 3 {
		t.Fatalf("best baseline not used: %v", regs)
	}
	for _, r := range regs {
		if r.BaseLabel != "pr6" {
			t.Fatalf("baseline attributed to %s, want pr6", r.BaseLabel)
		}
	}
}

func TestCompareUnmatchedBenchmarks(t *testing.T) {
	base := parseGolden(t, "pr6")
	cur := parseGolden(t, "ci")
	cur.Benchmarks[0].Name = "BenchmarkBrandNew"
	regs, gated, _, unmatched := compare(cur, []*Point{base}, 4, 10)
	if len(regs) != 0 || gated != 2 || unmatched != 1 {
		t.Fatalf("new benchmark handling: regs=%v gated=%d unmatched=%d", regs, gated, unmatched)
	}
}
