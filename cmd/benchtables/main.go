// Command benchtables regenerates every table and figure of the paper in
// one run, printing paper-style output for each, plus the ablation studies.
// This is the one-shot reproduction harness; see EXPERIMENTS.md for the
// recorded paper-versus-measured comparison.
//
// Usage:
//
//	benchtables            # reduced scale, all experiments (minutes)
//	benchtables -full      # paper scale (hours)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"flattree/internal/experiments"
)

func main() {
	var (
		full    = flag.Bool("full", false, "paper-scale topologies (slow)")
		seed    = flag.Int64("seed", 1, "seed for all stochastic components")
		epsilon = flag.Float64("epsilon", 0.25, "LP approximation accuracy")
	)
	flag.Parse()
	cfg := experiments.Config{Full: *full, Seed: *seed, Epsilon: *epsilon}

	order := []string{
		"table1", "table2", "fig5", "fig6", "fig7", "fig8",
		"fig10", "table3", "fig11", "rules", "props", "cost", "hybrid-placement",
		"ablation-wiring", "ablation-profile", "ablation-sidewiring", "ablation-k",
		"ablation-failures", "ablation-packet", "ablation-packet-fct", "ablation-gradual",
	}
	failures := 0
	grand := time.Now()
	for _, name := range order {
		start := time.Now()
		res, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s failed: %v\n", name, err)
			failures++
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("all experiments done in %v, %d failures\n", time.Since(grand).Round(time.Second), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
