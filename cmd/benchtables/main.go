// Command benchtables regenerates every table and figure of the paper in
// one run, printing paper-style output for each, plus the ablation studies.
// This is the one-shot reproduction harness; see EXPERIMENTS.md for the
// recorded paper-versus-measured comparison.
//
// Telemetry is always on: the run ends with a per-experiment wall-time
// table (from the experiment root spans) and the simulator/solver event
// counters, the source data for the bench trajectory (BENCH_*.json).
//
// Usage:
//
//	benchtables                  # reduced scale, all experiments (minutes)
//	benchtables -full            # paper scale (hours)
//	benchtables -telemetry b.json  # also write the full JSON snapshot
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"flattree/internal/experiments"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/recorder"
	"flattree/internal/telemetry"
)

func main() {
	var (
		full     = flag.Bool("full", false, "paper-scale topologies (slow)")
		seed     = flag.Int64("seed", 1, "seed for all stochastic components")
		epsilon  = flag.Float64("epsilon", 0.25, "LP approximation accuracy")
		telemOut = flag.String("telemetry", "", "write the JSON telemetry snapshot to this file, or '-' for stdout")
		workers  = flag.Int("workers", 0, "worker-pool size for parallel sections (0 = GOMAXPROCS); results are identical for any value")
		fbmix    = flag.Int("fbmix-flows", 0, "fbmix_large: flows per workload (0 = scale default; 2500000 runs 10M flows total)")
		record   = flag.String("record", "", "flight-recorder output base: writes <base>.trace.json (Perfetto), <base>.jsonl (journal), <base>.runinfo.json")
		recLimit = flag.Int("record-limit", recorder.DefaultLimit, "flight-recorder ring capacity: events kept per track before the oldest are dropped")
		runinfo  = flag.String("runinfo", "runinfo.json", "write the provenance manifest to this file, or '-' for stdout; empty disables (with -record the manifest goes to <base>.runinfo.json instead)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)
	cfg := experiments.Config{Full: *full, Seed: *seed, Epsilon: *epsilon, FBMixFlows: *fbmix}
	reg := telemetry.Enable()
	var rec *recorder.Recorder
	if *record != "" {
		rec = recorder.Enable(*recLimit)
	}

	order := []string{
		"table1", "table2", "fig5", "fig6", "fig7", "fig8",
		"fig10", "table3", "fig11", "rules", "props", "cost", "hybrid-placement",
		"ablation-wiring", "ablation-profile", "ablation-sidewiring", "ablation-k",
		"ablation-failures", "churn", "ablation-packet", "ablation-packet-fct", "ablation-gradual",
		"fbmix_large",
	}
	failures := 0
	grand := time.Now()
	for _, oc := range experiments.RunAll(order, cfg) {
		if oc.Err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: %s failed: %v\n", oc.Name, oc.Err)
			failures++
			continue
		}
		fmt.Println(oc.Result.String())
		fmt.Printf("(%s in %v)\n\n", oc.Name, oc.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("all experiments done in %v, %d failures\n\n", time.Since(grand).Round(time.Second), failures)

	snap := reg.Snapshot()
	fmt.Println(summarize(snap, order))
	if *telemOut != "" {
		if err := writeSnapshot(snap, *telemOut); err != nil {
			fmt.Fprintf(os.Stderr, "benchtables: telemetry snapshot: %v\n", err)
			failures++
		}
	}
	if err := writeRecord(rec, snap, *record, *runinfo, *seed, *workers); err != nil {
		fmt.Fprintf(os.Stderr, "benchtables: %v\n", err)
		failures++
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// writeRecord exports the flight-recorder trace and journal (when -record
// gave a base path) and the run's provenance manifest.
func writeRecord(rec *recorder.Recorder, snap *telemetry.Snapshot, base, runinfoDst string, seed int64, workers int) error {
	if base != "" {
		if err := writeFile(base+".trace.json", func(w io.Writer) error { return recorder.WriteTrace(w, rec, snap) }); err != nil {
			return fmt.Errorf("trace export: %w", err)
		}
		if err := writeFile(base+".jsonl", func(w io.Writer) error { return recorder.WriteJournal(w, rec) }); err != nil {
			return fmt.Errorf("journal export: %w", err)
		}
		runinfoDst = base + ".runinfo.json"
	}
	if runinfoDst == "" {
		return nil
	}
	ri := recorder.CollectRunInfo("benchtables", seed, workers, recorder.FlagMap(flag.CommandLine), rec, snap)
	if err := writeFile(runinfoDst, ri.WriteJSON); err != nil {
		return fmt.Errorf("runinfo manifest: %w", err)
	}
	return nil
}

func writeFile(dst string, write func(w io.Writer) error) error {
	if dst == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// summarize renders the run's telemetry: per-experiment wall time from the
// root spans, then every counter — the event totals that make run-to-run
// performance comparable. Rows follow the experiment order, not the
// schedule-dependent span collection order.
func summarize(snap *telemetry.Snapshot, order []string) string {
	type row struct {
		wall        string
		conversions int
	}
	rows := map[string]row{}
	for _, sp := range snap.Spans {
		name, ok := strings.CutPrefix(sp.Name, "experiment:")
		if !ok {
			continue
		}
		rows[name] = row{fmt.Sprintf("%.3f", sp.DurationSeconds), countSpans(sp.Children, "conversion")}
	}
	st := &metrics.Table{Header: []string{"experiment", "wall time (s)", "conversions"}}
	for _, name := range order {
		if r, ok := rows[name]; ok {
			st.Add(name, r.wall, r.conversions)
		}
	}
	out := "== telemetry: per-experiment wall time ==\n" + st.String()

	ct := &metrics.Table{Header: []string{"counter", "value"}}
	keys := make([]string, 0, len(snap.Counters))
	for k := range snap.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ct.Add(k, snap.Counters[k])
	}
	return out + "\n== telemetry: event counters ==\n" + ct.String()
}

// countSpans counts spans with the given name anywhere under the nodes.
func countSpans(spans []telemetry.SpanSnapshot, name string) int {
	n := 0
	for _, s := range spans {
		if s.Name == name {
			n++
		}
		n += countSpans(s.Children, name)
	}
	return n
}

func writeSnapshot(snap *telemetry.Snapshot, dst string) error {
	if dst == "-" {
		return snap.WriteJSON(os.Stdout)
	}
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
