// Command flatd is the resident flat-tree control-plane daemon: it owns a
// live convertible topology with an incremental route table and serves
// conversion quotes, route lookups, link events, and telemetry over
// HTTP/JSON (internal/service).
//
// Usage:
//
//	flatd                                   # mini-1, clos, localhost:8080
//	flatd -topo topo-1 -full -mode local
//	flatd -addr 127.0.0.1:0                 # ephemeral port (printed on stderr)
//	flatd -pprof localhost:6060
//
// The daemon binds its listener before announcing itself, and a SIGINT or
// SIGTERM begins a graceful shutdown: the listener closes, in-flight
// requests drain (bounded by -drain-timeout), and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flattree/internal/control"
	"flattree/internal/core"
	"flattree/internal/experiments"
	"flattree/internal/parallel"
	"flattree/internal/service"
	"flattree/internal/telemetry"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "address to serve HTTP on")
		topoName   = flag.String("topo", "mini-1", "topology preset to own (see flatsim -list scales)")
		full       = flag.Bool("full", false, "use paper-scale presets (topo-1..6)")
		mode       = flag.String("mode", "clos", "initial mode for every pod: clos, local, or global")
		k          = flag.Int("k", 8, "k-shortest paths per ingress pair in the live route table")
		detection  = flag.Float64("detection", 0.05, "failure-detection latency priced into link-event reactions, seconds")
		sequential = flag.Bool("sequential-rules", false, "price rule updates sequentially (testbed legacy switches) instead of per-switch parallel")
		workers    = flag.Int("workers", 0, "worker-pool size for parallel sections (0 = GOMAXPROCS)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request handling deadline")
		drain      = flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
		spanLimit  = flag.Int("span-limit", 512, "request root spans kept in the telemetry registry (0 = unbounded)")
	)
	flag.Parse()
	parallel.SetDefaultWorkers(*workers)

	if err := run(*addr, *topoName, *full, *mode, *k, *detection, *sequential,
		*pprofAddr, *reqTimeout, *drain, *spanLimit); err != nil {
		fmt.Fprintf(os.Stderr, "flatd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, topoName string, full bool, mode string, k int, detection float64,
	sequential bool, pprofAddr string, reqTimeout, drain time.Duration, spanLimit int) error {
	m, err := core.ParseMode(mode)
	if err != nil {
		return err
	}
	nw, err := experiments.Config{Full: full}.Network(topoName)
	if err != nil {
		return err
	}
	nw.SetMode(m)

	reg := telemetry.Enable()
	reg.SetRootSpanLimit(spanLimit)

	delay := control.TestbedDelayModel()
	delay.Parallel = !sequential
	srv, err := service.New(service.Config{
		Network:        nw,
		K:              k,
		Detection:      detection,
		Delay:          delay,
		Registry:       reg,
		RequestTimeout: reqTimeout,
		DrainTimeout:   drain,
	})
	if err != nil {
		return err
	}

	// Bind before announcing anything, and on the pprof side too: a banner
	// must never precede the listener it describes.
	if pprofAddr != "" {
		pa, err := service.StartPprof(pprofAddr, func(err error) {
			fmt.Fprintf(os.Stderr, "flatd: pprof server: %v\n", err)
		})
		if err != nil {
			return fmt.Errorf("pprof listen on %s: %w", pprofAddr, err)
		}
		fmt.Fprintf(os.Stderr, "flatd: pprof at http://%s/debug/pprof/\n", pa)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen on %s: %w", addr, err)
	}
	fmt.Fprintf(os.Stderr, "flatd: serving %s (mode %s, k=%d) on http://%s\n",
		topoName, m, k, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, ln); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "flatd: shut down cleanly")
	return nil
}
