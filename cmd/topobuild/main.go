// Command topobuild constructs a topology and reports its structure:
// switch/server counts, degrees, average path length, diameter, per-core
// link census, and (optionally) the full link list.
//
// Usage:
//
//	topobuild -base topo-1 -mode global
//	topobuild -base example -mode clos -links
//	topobuild -base topo-2 -mode local -pattern 2
//	topobuild -kind rg -base topo-1          # random graph from topo-1 equipment
//	topobuild -kind 2stage -base topo-1      # two-stage random graph
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flattree/internal/core"
	"flattree/internal/metrics"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

func main() {
	var (
		base    = flag.String("base", "example", "base Clos: example, topo-1..topo-6, or fat-tree-K")
		kind    = flag.String("kind", "flattree", "network kind: flattree, clos, rg, 2stage")
		mode    = flag.String("mode", "clos", "flat-tree mode: clos, local, global")
		pattern = flag.Int("pattern", 1, "pod-core wiring pattern (1 or 2)")
		n       = flag.Int("n", 0, "4-port converters per pair (0 = auto)")
		m       = flag.Int("m", 0, "6-port converters per pair (0 = auto)")
		seed    = flag.Int64("seed", 1, "seed for random constructions")
		links   = flag.Bool("links", false, "dump the full link list")
		dot     = flag.String("dot", "", "write a Graphviz DOT rendering to this file")
		jsonOut = flag.String("json", "", "write a JSON serialization to this file")
	)
	flag.Parse()

	cp, err := baseParams(*base)
	if err != nil {
		fail(err)
	}
	t, err := build(cp, *kind, *mode, *pattern, *n, *m, *seed)
	if err != nil {
		fail(err)
	}
	report(t, *links)
	if *dot != "" {
		if err := writeFile(*dot, t.WriteDOT); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *dot)
	}
	if *jsonOut != "" {
		if err := writeFile(*jsonOut, t.WriteJSON); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *jsonOut)
	}
}

// writeFile streams one of the topology encoders into a file.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func baseParams(name string) (topo.ClosParams, error) {
	if name == "example" {
		return core.ExampleClos(), nil
	}
	if p, err := topo.Table2ByName(name); err == nil {
		return p, nil
	}
	var k int
	if _, err := fmt.Sscanf(name, "fat-tree-%d", &k); err == nil && k >= 4 && k%2 == 0 {
		return topo.FatTree(k), nil
	}
	return topo.ClosParams{}, fmt.Errorf("unknown base %q", name)
}

func build(cp topo.ClosParams, kind, mode string, pattern, n, m int, seed int64) (*topo.Topology, error) {
	switch kind {
	case "clos":
		return topo.BuildClos(cp)
	case "rg":
		p := topo.FromClosEquipment(cp)
		p.Seed = seed
		return topo.BuildRandomGraph(p)
	case "2stage":
		return topo.BuildTwoStageRandomGraph(topo.TwoStageParams{Name: cp.Name + "-2stage", Clos: cp, Seed: seed})
	case "flattree":
		opt := core.Options{N: n, M: m, Pattern: core.Pattern(pattern)}
		if n == 0 && m == 0 {
			g := cp.AggUplinks / cp.R()
			opt.N, opt.M = 1, g-1
			if opt.M < 1 {
				opt.M = 1
				opt.N = 0
			}
		}
		nw, err := core.New(cp, opt)
		if err != nil {
			return nil, err
		}
		md, err := core.ParseMode(mode)
		if err != nil {
			return nil, err
		}
		nw.SetMode(md)
		r := nw.Realize()
		return r.Topo, nil
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

func report(t *topo.Topology, dumpLinks bool) {
	if err := t.Validate(); err != nil {
		fail(err)
	}
	fmt.Printf("topology %s\n", t.Name)
	tb := &metrics.Table{Header: []string{"metric", "value"}}
	tb.Add("edge switches", len(t.Edges()))
	tb.Add("agg switches", len(t.Aggs()))
	tb.Add("core switches", len(t.Cores()))
	tb.Add("servers", len(t.Servers()))
	tb.Add("links", t.G.NumLinks())
	tb.Add("pods", t.NumPods())
	table := routing.BuildKShortest(t, 1)
	tb.Add("ingress switches", len(table.Ingress))
	tb.Add("avg path length (switch hops)", table.AveragePathLength())
	tb.Add("diameter (ingress)", t.G.Diameter(table.Ingress))
	fmt.Print(tb.String())

	if dumpLinks {
		fmt.Println("\nlinks:")
		for _, l := range t.G.Links() {
			na, nb := t.Nodes[l.A], t.Nodes[l.B]
			fmt.Printf("  %4d: %s#%d (pod %d) -- %s#%d (pod %d)\n",
				l.ID, na.Kind, na.Index, na.Pod, nb.Kind, nb.Index, nb.Pod)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "topobuild:", err)
	os.Exit(1)
}
