// Package service is a lockcheck/ctxflow-scope package with no
// violations: the snapshot helper releases the lock before the handler
// writes, guarded fields are written under the write lock, and the
// request context threads through the helpers.
package service

import (
	"context"
	"net/http"
	"sync"
)

type daemon struct {
	mu    sync.RWMutex
	state int
}

func (d *daemon) handle(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte(label(r.Context(), d.snapshot())))
}

func (d *daemon) snapshot() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.state
}

func (d *daemon) bump() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state++
}

func label(ctx context.Context, n int) string {
	select {
	case <-ctx.Done():
		return "cancelled"
	default:
	}
	if n > 0 {
		return "busy"
	}
	return "idle"
}
