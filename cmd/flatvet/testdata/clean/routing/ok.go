// Package routing is a deterministic-scope package with no violations:
// the exit-code test asserts flatvet returns 0 here.
package routing

import "sort"

func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
