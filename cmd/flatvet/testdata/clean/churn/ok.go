// Package churn is an errdrop-scope package with no violations: every
// error is handled or carries a reasoned waiver.
package churn

import "errors"

func apply() error { return errors.New("boom") }

func Process() error {
	if err := apply(); err != nil {
		return err
	}
	//flatvet:errok best-effort cleanup, primary result already returned
	apply()
	return nil
}
