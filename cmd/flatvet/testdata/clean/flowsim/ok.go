// Package flowsim is a hotalloc-scope package with no violations: the
// marked hot path reuses pooled backing and presized capacity, and its
// one fmt call carries a reasoned waiver.
package flowsim

import "fmt"

type pool struct {
	scratch []int
}

//flatvet:hotpath exercised once per event in the clean-module test
func (p *pool) round(xs []int) (int, error) {
	out := p.scratch[:0]
	for _, x := range xs {
		out = append(out, x)
	}
	acc := make([]int, 0, len(out))
	for _, x := range out {
		if x > 0 {
			acc = append(acc, x)
		}
	}
	p.scratch = out
	if len(acc) == len(xs) {
		//flatvet:alloc error path only, the round has already failed
		return 0, fmt.Errorf("no progress")
	}
	return len(acc), nil
}
