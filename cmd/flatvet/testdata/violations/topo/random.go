// Package topo seeds the seededrand violations.
package topo

import (
	"math/rand"
	"time"
)

// Wire picks random ports from the global source: seededrand fires.
func Wire(n int) int {
	return rand.Intn(n)
}

// NewRNG launders time.Now through NewSource: seededrand fires.
func NewRNG() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
