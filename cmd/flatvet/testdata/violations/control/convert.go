// Package control seeds the spanend violations.
package control

import "violations/telemetry"

// Convert discards the span outright: spanend fires.
func Convert() {
	telemetry.StartSpan("convert")
}

// Apply binds the span but never ends it: spanend fires.
func Apply() {
	span := telemetry.StartRootSpan("apply")
	span.SetAttr("phase", "rules")
}

// Good is the correct shape and must stay silent.
func Good() {
	span := telemetry.StartSpan("good")
	defer span.End()
}
