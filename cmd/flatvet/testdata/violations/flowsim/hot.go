// hot.go seeds hotalloc violations: allocation inside a marked hot
// path, and a reason-less //flatvet:hotpath the suite reports as
// malformed (and which therefore marks nothing).
package flowsim

import "fmt"

// Gather appends into an un-presized slice on a marked hot path.
//
//flatvet:hotpath seeded violation for the golden test
func Gather(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// Label sits under a reason-less marker: the directive is malformed,
// so the fmt call is NOT additionally reported.
//
//flatvet:hotpath
func Label(n int) string {
	return fmt.Sprintf("%d", n)
}
