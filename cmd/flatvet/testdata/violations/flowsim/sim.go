// Package flowsim seeds one violation for each analyzer that scopes to
// simulated-time deterministic packages. The golden test asserts the
// exact positions and messages flatvet reports here.
package flowsim

import "time"

// SumRates: maporder on the loop, floatsum on the accumulation. The
// ordered waiver is honored by maporder but must NOT silence floatsum.
func SumRates(m map[int]float64) float64 {
	sum := 0.0
	//flatvet:ordered waived to prove floatsum still fires
	for _, v := range m {
		sum += v
	}
	return sum
}

// Order collects map values in iteration order: maporder fires.
func Order(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// Stamp reads the wall clock in an event path: simclock fires.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// BadWaiver has a reason-less directive: the suite reports it as
// malformed instead of waiving.
func BadWaiver(m map[int]int) int {
	n := 0
	//flatvet:ordered
	for range m {
		n++
	}
	return n
}

// TypoRule waives a rule that does not exist: reported by the suite.
func TypoRule(m map[int]int) int {
	n := 0
	//flatvet:order integer counting is order-independent
	for range m {
		n++
	}
	return n
}
