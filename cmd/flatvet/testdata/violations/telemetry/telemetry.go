// Package telemetry is a stub of the real telemetry package: spanend
// recognizes StartSpan/StartRootSpan provided by any package whose
// final import-path segment is "telemetry".
package telemetry

type Span struct{ Name string }

func (s *Span) End()                {}
func (s *Span) SetAttr(k, v string) {}

func StartSpan(name string) *Span     { return &Span{Name: name} }
func StartRootSpan(name string) *Span { return &Span{Name: name} }

type Registry struct{}

func (r *Registry) StartSpan(name string) *Span { return &Span{Name: name} }
