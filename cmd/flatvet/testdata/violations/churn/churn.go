// Package churn seeds errdrop violations: errors discarded with the
// blank identifier, a bare call, and a reason-less //flatvet:errok the
// suite reports as malformed instead of honoring.
package churn

import "errors"

func apply() error { return errors.New("boom") }

// Process drops two errors outright.
func Process() {
	_ = apply()
	apply()
}

// BadWaiver carries a reason-less errok: malformed, so the drop below
// it is still reported too.
func BadWaiver() {
	//flatvet:errok
	apply()
}
