// Package service seeds lockcheck and ctxflow violations: a handler
// that writes the response while holding the RWMutex, a guarded-field
// write outside any lock region, and a severed request context.
package service

import (
	"context"
	"net/http"
	"sync"
)

type daemon struct {
	mu    sync.RWMutex
	state int
}

// handle blocks on the client write under the read lock and restarts
// the context chain below the request.
func (d *daemon) handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background()
	d.mu.RLock()
	defer d.mu.RUnlock()
	w.Write([]byte(statusLabel(ctx)))
}

// statusLabel drops the context it accepts.
func statusLabel(ctx context.Context) string {
	return "ok"
}

// bump writes the guarded counter without taking the lock.
func (d *daemon) bump() {
	d.state++
}
