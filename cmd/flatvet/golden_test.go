package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"flattree/internal/analysis/sarif"
	"flattree/internal/analysis/suite"
)

// TestViolationsGolden runs the full suite over the deliberately broken
// testdata/violations module and asserts the exact diagnostic
// positions and messages for all five analyzers plus the directive
// checks — this is the test that proves CI goes red on a seeded
// violation.
func TestViolationsGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "violations"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "violations.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stdout.String(), string(golden); got != want {
		t.Errorf("diagnostics differ from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The golden file must exercise every analyzer and both directive
	// checks; guard against the testdata rotting into partial coverage.
	for _, analyzer := range []string{
		"maporder", "floatsum", "seededrand", "simclock", "spanend",
		"lockcheck", "ctxflow", "errdrop", "hotalloc", "flatvet",
	} {
		if !strings.Contains(string(golden), ": "+analyzer+": ") {
			t.Errorf("golden file has no %s diagnostic", analyzer)
		}
	}
}

// TestSARIFRoundTrip runs the violations module with -sarif and pins
// the CI-artifact contract: the file decodes, re-encodes to the same
// bytes, and carries one result per text diagnostic.
func TestSARIFRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "flatvet.sarif")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "violations"), "-sarif", out, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	log, err := sarif.Decode(data)
	if err != nil {
		t.Fatalf("decoding -sarif output: %v", err)
	}
	enc, err := sarif.Encode(log)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, enc) {
		t.Errorf("-sarif output does not round-trip byte-identically:\nfile:     %q\nreencode: %q", data, enc)
	}
	textLines := strings.Count(stdout.String(), "\n")
	if got := len(log.Runs[0].Results); got != textLines {
		t.Errorf("SARIF has %d results, text output has %d diagnostics", got, textLines)
	}
	if got, want := len(log.Runs[0].Tool.Driver.Rules), len(suite.Analyzers())+1; got != want {
		t.Errorf("SARIF driver declares %d rules, want %d (analyzers + directive syntax)", got, want)
	}
}

// TestSARIFCleanRun asserts a clean tree still writes a SARIF log —
// the empty results array is CI's signal that the tree was scanned.
func TestSARIFCleanRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "flatvet.sarif")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "clean"), "-sarif", out, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	log, err := sarif.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Runs[0].Results) != 0 {
		t.Errorf("clean run produced SARIF results: %+v", log.Runs[0].Results)
	}
}

// TestPkgsFilter asserts -pkgs narrows reporting to the named
// final-segment packages.
func TestPkgsFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "violations"), "-pkgs", "churn", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		if !strings.HasPrefix(line, "churn/") {
			t.Errorf("-pkgs churn reported a non-churn diagnostic: %s", line)
		}
	}
	if !strings.Contains(stdout.String(), "errdrop") {
		t.Errorf("-pkgs churn lost the errdrop findings:\n%s", stdout.String())
	}
}

// TestCleanExitsZero asserts the 0 exit on a violation-free module.
func TestCleanExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "clean"), "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output: %s", stdout.String())
	}
}

// TestBadDirExitsTwo asserts the load-failure exit code.
func TestBadDirExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "testdata", "./does/not/exist"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestWholeTreeClean runs the suite over this repository itself: the
// tree must stay flatvet-clean, with every surviving map range either
// rewritten to sorted keys or carrying a reasoned waiver.
func TestWholeTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree analysis in -short mode")
	}
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("flatvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}
