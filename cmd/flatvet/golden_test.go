package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestViolationsGolden runs the full suite over the deliberately broken
// testdata/violations module and asserts the exact diagnostic
// positions and messages for all five analyzers plus the directive
// checks — this is the test that proves CI goes red on a seeded
// violation.
func TestViolationsGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "violations"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "violations.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := stdout.String(), string(golden); got != want {
		t.Errorf("diagnostics differ from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The golden file must exercise every analyzer and both directive
	// checks; guard against the testdata rotting into partial coverage.
	for _, analyzer := range []string{"maporder", "floatsum", "seededrand", "simclock", "spanend", "flatvet"} {
		if !strings.Contains(string(golden), ": "+analyzer+": ") {
			t.Errorf("golden file has no %s diagnostic", analyzer)
		}
	}
}

// TestCleanExitsZero asserts the 0 exit on a violation-free module.
func TestCleanExitsZero(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", filepath.Join("testdata", "clean"), "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output: %s", stdout.String())
	}
}

// TestBadDirExitsTwo asserts the load-failure exit code.
func TestBadDirExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "testdata", "./does/not/exist"}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestWholeTreeClean runs the suite over this repository itself: the
// tree must stay flatvet-clean, with every surviving map range either
// rewritten to sorted keys or carrying a reasoned waiver.
func TestWholeTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree analysis in -short mode")
	}
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", root, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("flatvet ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}
