// Command flatvet runs the repo's determinism, seeding, telemetry,
// concurrency, and hot-path analyzers over a package tree.
//
// Usage:
//
//	go run ./cmd/flatvet ./...
//	go run ./cmd/flatvet -C some/module ./...
//	go run ./cmd/flatvet -pkgs service,flowsim -sarif out.sarif ./...
//
// The suite (see internal/analysis/suite) checks:
//
//	maporder    range-over-map in deterministic packages
//	floatsum    float accumulation in map-range bodies (unwaivable)
//	seededrand  global math/rand or wall-clock-seeded sources
//	simclock    time.Now/Since/Until in simulated-time packages
//	spanend     telemetry spans that never reach End
//	lockcheck   blocking calls and guarded-field writes under the service mutex
//	ctxflow     context threading on daemon request paths
//	errdrop     discarded error returns in simulation/control packages
//	hotalloc    allocation in //flatvet:hotpath-marked functions
//
// plus the //flatvet:<rule> <reason> waiver-directive syntax itself.
// -pkgs restricts reporting to the named final import-path segments;
// -sarif additionally writes the findings (even when there are none)
// as a SARIF 2.1.0 log for CI code-scanning upload; -workers bounds
// the parallel package loading and type-checking fan-out.
// Exit status: 0 clean, 1 diagnostics reported, 2 the tree could not
// be loaded or type-checked.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"flattree/internal/analysis/sarif"
	"flattree/internal/analysis/suite"
	"flattree/internal/parallel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flatvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to `file` (\"-\" for stdout)")
	pkgsFlag := fs.String("pkgs", "", "report only packages whose final import-path segment is in this comma-separated `list`")
	workers := fs.Int("workers", 0, "parallel load/type-check workers (0 = GOMAXPROCS)")
	fs.Usage = func() {
		var names []string
		for _, a := range suite.Analyzers() {
			names = append(names, a.Name)
		}
		fmt.Fprintf(stderr, "usage: flatvet [-C dir] [-pkgs list] [-sarif file] [-workers n] [packages]\n\nAnalyzers: %s\nWaive with //flatvet:<rule> <reason> on or above the flagged line (rules: %s).\n",
			strings.Join(names, " "), strings.Join(suite.KnownRules(), ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers > 0 {
		parallel.SetDefaultWorkers(*workers)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	abs, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "flatvet: %v\n", err)
		return 2
	}
	var opts suite.Options
	if *pkgsFlag != "" {
		for _, p := range strings.Split(*pkgsFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				opts.Only = append(opts.Only, p)
			}
		}
	}
	diags, err := suite.RunOpts(abs, opts, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "flatvet: %v\n", err)
		return 2
	}
	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, stdout, abs, diags); err != nil {
			fmt.Fprintf(stderr, "flatvet: %v\n", err)
			return 2
		}
	}
	if len(diags) == 0 {
		return 0
	}
	suite.Format(stdout, abs, diags)
	return 1
}

// writeSARIF encodes diags and writes them to path ("-" = stdout). A
// clean run still writes a log: CI uploads the artifact
// unconditionally, and an empty results array is the signal that the
// tree is clean rather than unscanned.
func writeSARIF(path string, stdout io.Writer, base string, diags []suite.Diag) error {
	data, err := sarif.Encode(suite.ToSARIF(base, diags))
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
