// Command flatvet runs the repo's determinism, seeding, and telemetry
// analyzers over a package tree.
//
// Usage:
//
//	go run ./cmd/flatvet ./...
//	go run ./cmd/flatvet -C some/module ./...
//
// The suite (see internal/analysis/suite) checks:
//
//	maporder    range-over-map in deterministic packages
//	floatsum    float accumulation in map-range bodies (unwaivable)
//	seededrand  global math/rand or wall-clock-seeded sources
//	simclock    time.Now/Since/Until in simulated-time packages
//	spanend     telemetry spans that never reach End
//
// plus the //flatvet:<rule> <reason> waiver-directive syntax itself.
// Exit status: 0 clean, 1 diagnostics reported, 2 the tree could not
// be loaded or type-checked.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"flattree/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flatvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: flatvet [-C dir] [packages]\n\nAnalyzers: maporder floatsum seededrand simclock spanend\nWaive with //flatvet:<rule> <reason> on or above the flagged line.\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	abs, err := filepath.Abs(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "flatvet: %v\n", err)
		return 2
	}
	diags, err := suite.Run(abs, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "flatvet: %v\n", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	suite.Format(stdout, abs, diags)
	return 1
}
